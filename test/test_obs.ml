(** Telemetry-layer tests (lib/obs + its wiring):

    - Vmstats primitives: log2 bucketing, counter/gauge/histogram/timer
      semantics, reset, JSON shape.
    - Trace: category-spec parsing, ring-buffer drain ordering.
    - Parity: the stats knob must never change program output, in any
      execution mode.
    - Smoke: after a Region perflab run the headline counters (mono-cache
      hits, link follows, guard failures, pipeline pass timers) are all
      nonzero — and zero again when the feature under them is disabled.
    - Retranslate-all: the generation bump reports the smashed links it
      kills via [link.invalidated], and linking resumes afterwards.
    - tc-print renders the hottest translations. *)

let loop_src = {|
  function helper($x) {
    if ($x > 10) { return $x - 1; }
    return $x + 2;
  }
  function main() {
    $s = 0;
    for ($i = 0; $i < 60; $i++) { $s += helper($i); }
    echo $s;
  } |}

let run_mode (mode : Core.Jit_options.mode) ?(retranslate = false)
    ?(tweak = fun (_ : Core.Jit_options.t) -> ()) (src : string)
  : string * Core.Engine.t =
  let u = Vm.Loader.load src in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.mode <- mode;
  tweak opts;
  let eng = Core.Engine.install ~opts u in
  let call () =
    let r, out =
      Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" [])
    in
    Runtime.Heap.decref r;
    out
  in
  let out = ref (call ()) in
  if retranslate then begin
    ignore (Core.Engine.retranslate_all eng);
    out := !out ^ call ()
  end
  else out := !out ^ call ();
  (!out, eng)

(* ---- Vmstats primitives ---- *)

let test_bucketing () =
  List.iter
    (fun (v, b) ->
       Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b
         (Obs.Vmstats.bucket_of v))
    [ (-3, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
      (1023, 10); (1024, 11); (max_int, 62) ]

let test_primitives () =
  Obs.Vmstats.enabled := true;
  Obs.Vmstats.reset ();
  let c = Obs.Vmstats.counter "test.counter" in
  Obs.Vmstats.bump c;
  Obs.Vmstats.add c 4;
  Alcotest.(check int) "counter" 5 (Obs.Vmstats.counter_value "test.counter");
  (* same name returns the same handle *)
  Obs.Vmstats.bump (Obs.Vmstats.counter "test.counter");
  Alcotest.(check int) "idempotent handle" 6
    (Obs.Vmstats.counter_value "test.counter");
  let g = Obs.Vmstats.gauge "test.gauge" in
  Obs.Vmstats.set g 17;
  Obs.Vmstats.set g 42;
  Alcotest.(check int) "gauge last-write-wins" 42
    (Obs.Vmstats.gauge_value "test.gauge");
  let h = Obs.Vmstats.histogram "test.hist" in
  Obs.Vmstats.observe h 3;
  Obs.Vmstats.observe h 300;
  Alcotest.(check int) "hist count" 2 h.Obs.Vmstats.h_count;
  Alcotest.(check int) "hist sum" 303 h.Obs.Vmstats.h_sum;
  let t = Obs.Vmstats.timer "test.timer" in
  let v = Obs.Vmstats.time t (fun () -> 99) in
  Alcotest.(check int) "timer passes result" 99 v;
  Alcotest.(check int) "timer calls" 1 (Obs.Vmstats.timer_calls "test.timer");
  (* disabled: probes are inert *)
  Obs.Vmstats.enabled := false;
  Obs.Vmstats.bump c;
  Obs.Vmstats.observe h 5;
  ignore (Obs.Vmstats.time t (fun () -> 0));
  Obs.Vmstats.enabled := true;
  Alcotest.(check int) "counter frozen while off" 6 c.Obs.Vmstats.c_count;
  Alcotest.(check int) "hist frozen while off" 2 h.Obs.Vmstats.h_count;
  Alcotest.(check int) "timer frozen while off" 1
    (Obs.Vmstats.timer_calls "test.timer");
  (* reset zeroes values but keeps registrations *)
  Obs.Vmstats.reset ();
  Alcotest.(check int) "counter reset" 0 (Obs.Vmstats.counter_value "test.counter");
  Alcotest.(check int) "hist reset" 0 h.Obs.Vmstats.h_count;
  Obs.Vmstats.bump c;
  Alcotest.(check int) "handle survives reset" 1 c.Obs.Vmstats.c_count

let test_json_shape () =
  Obs.Vmstats.enabled := true;
  Obs.Vmstats.reset ();
  Obs.Vmstats.bump (Obs.Vmstats.counter "test.json\"quote");
  let j = Obs.Vmstats.to_json () in
  let has needle =
    let nl = String.length needle and jl = String.length j in
    let rec go i = i + nl <= jl && (String.sub j i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counters section" true (has "\"counters\"");
  Alcotest.(check bool) "gauges section" true (has "\"gauges\"");
  Alcotest.(check bool) "histograms section" true (has "\"histograms\"");
  Alcotest.(check bool) "timers section" true (has "\"timers\"");
  Alcotest.(check bool) "names are escaped" true (has "test.json\\\"quote")

(* ---- Trace ---- *)

let test_trace_spec () =
  let names cs = List.map Obs.Trace.category_name cs in
  Alcotest.(check (list string)) "all"
    [ "translate"; "retranslate-all"; "link"; "exit"; "guard"; "lease" ]
    (names (Obs.Trace.parse_spec "all"));
  Alcotest.(check (list string)) "legacy JIT_TRACE=1"
    (names Obs.Trace.all_categories) (names (Obs.Trace.parse_spec "1"));
  Alcotest.(check (list string)) "subset"
    [ "link"; "guard" ] (names (Obs.Trace.parse_spec "link,guard"));
  Alcotest.(check (list string)) "off" [] (names (Obs.Trace.parse_spec "0"));
  Alcotest.(check (list string)) "unknown names dropped"
    [ "exit" ] (names (Obs.Trace.parse_spec "exit,bogus"))

let test_trace_ring () =
  Obs.Trace.configure ~ring_capacity:4 ~spec:(Some "link") ();
  Alcotest.(check bool) "link on" true (Obs.Trace.on Obs.Trace.Link);
  Alcotest.(check bool) "guard off" false (Obs.Trace.on Obs.Trace.Guard);
  for i = 0 to 5 do
    Obs.Trace.emit Obs.Trace.Link [ ("i", Obs.Trace.I i) ]
  done;
  let lines = Obs.Trace.drain () in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length lines);
  Alcotest.(check int) "all events counted" 6 (Obs.Trace.events_emitted ());
  Alcotest.(check int) "overwrites counted" 2 (Obs.Trace.events_dropped ());
  (* oldest-first, and the oldest two were overwritten *)
  Alcotest.(check string) "oldest survivor"
    "{\"seq\": 2, \"cat\": \"link\", \"i\": 2}" (List.hd lines);
  (* restore defaults so later installs start clean *)
  Obs.Trace.configure ~spec:None ()

(* ---- stats knob must not change output ---- *)

let test_stats_parity () =
  List.iter
    (fun mode ->
       let retranslate = mode = Core.Jit_options.Region in
       let on, _ = run_mode mode ~retranslate loop_src in
       let off, _ =
         run_mode mode ~retranslate loop_src
           ~tweak:(fun o -> o.Core.Jit_options.stats <- false)
       in
       Alcotest.(check string) "stats on == stats off" on off)
    [ Core.Jit_options.Interp; Core.Jit_options.Tracelet;
      Core.Jit_options.ProfileOnly; Core.Jit_options.Region ];
  (* leave the global knob on for the rest of the suite *)
  Obs.Vmstats.enabled := true

(* ---- end-to-end counter smoke (perflab workload, Region mode) ---- *)

let counter = Obs.Vmstats.counter_value

let test_vmstats_smoke () =
  let r = Server.Perflab.run Core.Jit_options.Region in
  Alcotest.(check bool) "mono-cache hits" true (counter "dispatch.mono_hit" > 0);
  Alcotest.(check bool) "link follows" true (counter "link.follow" > 0);
  Alcotest.(check bool) "guard failures" true (counter "guard.fail" > 0);
  Alcotest.(check bool) "regions formed" true (counter "region.formed" > 0);
  Alcotest.(check bool) "optimized translations" true
    (counter "translate.optimized" > 0);
  Alcotest.(check bool) "interp opcode counts" true
    (counter "interp.op.Binop" > 0);
  Alcotest.(check bool) "pipeline pass timers ran" true
    (Obs.Vmstats.timer_calls "pass.dce" > 0);
  (* gauges are synced on demand *)
  Core.Engine.sync_vmstats r.Server.Perflab.r_engine;
  Alcotest.(check bool) "code bytes gauge" true
    (Obs.Vmstats.gauge_value "code.bytes.main" > 0);
  Alcotest.(check bool) "icache accesses gauge" true
    (Obs.Vmstats.gauge_value "icache.accesses" > 0);
  (* with dispatch caches off, the mono cache and links are never used *)
  ignore
    (Server.Perflab.run Core.Jit_options.Region
       ~tweak:(fun o -> o.Core.Jit_options.dispatch_caches <- false));
  Alcotest.(check int) "no mono hits with caches off" 0
    (counter "dispatch.mono_hit");
  Alcotest.(check int) "no link follows with caches off" 0
    (counter "link.follow");
  Alcotest.(check bool) "still guard failures" true (counter "guard.fail" > 0)

let test_install_resets () =
  ignore (Server.Perflab.run Core.Jit_options.Region);
  Alcotest.(check bool) "counters hot after run" true
    (counter "dispatch.mono_hit" > 0);
  Alcotest.(check bool) "profile recorded" true (Vm.Prof.call_graph () <> []);
  (* a fresh install starts a fresh engine-scoped registry and profile *)
  let u = Vm.Loader.load loop_src in
  ignore (Core.Engine.install u);
  Alcotest.(check int) "vmstats reset at install" 0
    (counter "dispatch.mono_hit");
  Alcotest.(check (list (pair (pair int int) int))) "prof reset at install"
    [] (Vm.Prof.call_graph ())

(* ---- retranslate-all link accounting ---- *)

let test_retranslate_links () =
  let u = Vm.Loader.load loop_src in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.mode <- Core.Jit_options.Region;
  let eng = Core.Engine.install ~opts u in
  let call () =
    let r, out =
      Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" [])
    in
    Runtime.Heap.decref r; out
  in
  let out1 = call () in
  let smashed_before = counter "link.smashed" in
  Alcotest.(check bool) "links smashed while profiling" true
    (smashed_before > 0);
  Alcotest.(check int) "nothing invalidated yet" 0
    (counter "link.invalidated");
  ignore (Core.Engine.retranslate_all eng);
  Alcotest.(check bool) "generation bump invalidated links" true
    (counter "link.invalidated" > 0);
  let mono_after_rta = counter "dispatch.mono_hit" in
  let follows_after_rta = counter "link.follow" in
  let binds_after_rta = counter "exit.bind" in
  let out2 = call () in
  let out3 = call () in
  Alcotest.(check string) "output stable across retranslate" out1 out2;
  Alcotest.(check string) "output stable on optimized reuse" out1 out3;
  (* the fresh tables re-engage the monomorphic entry cache... *)
  Alcotest.(check bool) "mono cache resumes after retranslate" true
    (counter "dispatch.mono_hit" > mono_after_rta);
  (* ...and any chained bind exit must re-smash or follow a gen-1 link —
     gen-0 links died with the generation bump *)
  if counter "exit.bind" > binds_after_rta then
    Alcotest.(check bool) "linking resumes in optimized code" true
      (counter "link.smashed" > smashed_before
       || counter "link.follow" > follows_after_rta)

(* ---- tc-print ---- *)

let test_tc_print () =
  let _, eng =
    run_mode Core.Jit_options.Region ~retranslate:true loop_src
  in
  let report = Core.Tc_print.report ~top:5 eng in
  let has needle =
    let nl = String.length needle and rl = String.length report in
    let rec go i =
      i + nl <= rl && (String.sub report i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "header present" true (has "tc-print:");
  Alcotest.(check bool) "ranked translation" true (has "#1   tr=");
  Alcotest.(check bool) "execs column" true (has "execs=");
  Alcotest.(check bool) "guard chains" true (has "guards:");
  Alcotest.(check bool) "exit link state" true (has "exit 0 pc=")

let suite =
  ( "obs",
    [ Alcotest.test_case "vmstats log2 bucketing" `Quick test_bucketing;
      Alcotest.test_case "vmstats primitives" `Quick test_primitives;
      Alcotest.test_case "vmstats json shape" `Quick test_json_shape;
      Alcotest.test_case "trace spec parsing" `Quick test_trace_spec;
      Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
      Alcotest.test_case "stats knob output parity" `Quick test_stats_parity;
      Alcotest.test_case "vmstats counter smoke" `Quick test_vmstats_smoke;
      Alcotest.test_case "install resets telemetry" `Quick test_install_resets;
      Alcotest.test_case "retranslate-all link accounting" `Quick
        test_retranslate_links;
      Alcotest.test_case "tc-print report" `Quick test_tc_print ] )
