(** Request-level observability: spans, serving percentiles, and the
    cycle-attribution profiler.

    - Vmstats percentile estimation over log2 histograms (+ exact-max
      tracking, burst-start reset so percentiles measure the burst).
    - The deterministic measured burst: [Serving.measure]'s JSON report
      is byte-identical for any (jit x request) worker configuration,
      including a mid-burst retranslate-all; the merged span log is in
      request-slot order and its totals tie out against per-request
      cycles; the folded profile sums exactly to total serving cycles.
    - tc-print's cycle ranking is a total order (byte-stable reports).
    - The lease trace category stays sequential (contiguous seq) with a
      dedicated drainer domain live, and its compile counts tie out
      against the lazy-translation counters. *)

(* ---- helpers ---- *)

(* Fresh engine through the standard steady-state bring-up: warm every
   endpoint, retranslate-all.  Lazy in-burst translation is on so frozen
   bursts exercise the miss-enqueue / lease-wait phases. *)
let warmed_engine ?(jit_workers = 1) ?(request_workers = 1)
    ?(trace : string option) () : Hhbc.Hunit.t * Core.Engine.t =
  let u = Vm.Loader.load Workloads.Endpoints.source in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.Core.Jit_options.jit_workers <- jit_workers;
  opts.Core.Jit_options.request_workers <- request_workers;
  opts.Core.Jit_options.lazy_translate <- true;
  (match trace with
   | Some s -> opts.Core.Jit_options.trace <- Some s
   | None -> ());
  let eng = Core.Engine.install ~opts u in
  for round = 0 to 14 do
    List.iter
      (fun (ep : Workloads.Endpoints.endpoint) ->
         let reps = max 1 (ep.Workloads.Endpoints.ep_weight / 10) in
         for k = 0 to reps - 1 do
           ignore (Server.Perflab.call_endpoint u ep (round * 3 + k))
         done)
      Workloads.Endpoints.endpoints
  done;
  ignore (Core.Engine.retranslate_all eng);
  (u, eng)

(* First integer after ["<key>": ] in a one-line JSON record. *)
let field_int (line : string) (key : string) : int =
  let pat = Printf.sprintf "\"%s\": " key in
  let plen = String.length pat in
  let n = String.length line in
  let rec find i =
    if i + plen > n then Alcotest.failf "field %s missing in %s" key line
    else if String.sub line i plen = pat then i + plen
    else find (i + 1)
  in
  let start = find 0 in
  let stop = ref start in
  while !stop < n
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
  do
    incr stop
  done;
  int_of_string (String.sub line start (!stop - start))

(* ---- Vmstats: percentile estimation and max tracking ---- *)

let fresh_hist () =
  { Obs.Vmstats.h_name = "test"; h_buckets = Array.make 63 0;
    h_count = 0; h_sum = 0; h_max = 0 }

let test_percentile () =
  let h = fresh_hist () in
  Alcotest.(check (float 0.0)) "empty histogram -> 0" 0.0
    (Obs.Vmstats.percentile h 50.0);
  for v = 1 to 100 do Obs.Vmstats.observe_record h v done;
  Alcotest.(check int) "max is exact" 100 (Obs.Vmstats.histogram_max h);
  let p50 = Obs.Vmstats.percentile h 50.0 in
  let p95 = Obs.Vmstats.percentile h 95.0 in
  let p99 = Obs.Vmstats.percentile h 99.0 in
  Alcotest.(check bool) "p50 within sample range" true
    (p50 > 0.0 && p50 <= 100.0);
  Alcotest.(check bool) "percentiles are monotonic" true
    (p50 <= p95 && p95 <= p99);
  Alcotest.(check bool) "estimates clamp to the exact max" true
    (p99 <= 100.0);
  (* log2 bucket 32..64 holds ranks 32..63: the p50 estimate (rank 50)
     must land inside that bucket's range *)
  Alcotest.(check bool) "p50 lands in the rank-50 bucket" true
    (p50 >= 32.0 && p50 <= 64.0)

let test_percentile_singleton () =
  let h = fresh_hist () in
  Obs.Vmstats.observe_record h 7;
  List.iter
    (fun p ->
       Alcotest.(check (float 0.0))
         (Printf.sprintf "single sample: p%.0f is the sample" p) 7.0
         (Obs.Vmstats.percentile h p))
    [ 50.0; 95.0; 99.0 ]

(* Burst-start reset: the serving histogram measures the burst, never
   warmup residue (regression for the percentile-pollution bug class). *)
let test_histogram_burst_reset () =
  let u, eng = warmed_engine () in
  let h = Obs.Vmstats.histogram "serving.request_cycles" in
  (* simulate warmup residue left in the registry histogram *)
  for _ = 1 to 17 do Obs.Vmstats.observe_record h 999_999 done;
  let requests = Server.Serving.mix ~rounds:2 () in
  ignore (Server.Serving.run ~workers:1 u eng requests);
  Alcotest.(check int) "histogram holds exactly the burst's requests"
    (Array.length requests) h.Obs.Vmstats.h_count;
  Alcotest.(check bool) "warmup residue is gone" true
    (Obs.Vmstats.histogram_max h < 999_999)

(* ---- The deterministic measured burst ---- *)

let measured_report (jw, rw) : string * Server.Serving.measured
                               * Server.Serving.request array =
  let u, eng = warmed_engine ~jit_workers:jw ~request_workers:rw () in
  let requests = Server.Serving.mix ~rounds:6 () in
  let trigger =
    (Array.length requests / 2,
     fun () -> ignore (Core.Engine.retranslate_all eng))
  in
  let m = Server.Serving.measure ~trigger u eng requests in
  (Server.Serving.report_json requests m, m, requests)

let test_report_bit_identical () =
  let configs = [ (1, 1); (2, 2); (4, 1); (1, 4) ] in
  let runs = List.map (fun c -> (c, measured_report c)) configs in
  let _, (r1, _, _) = List.hd runs in
  Alcotest.(check bool) "report carries its schema tag" true
    (String.length r1 > 0
     && (let rec has i =
           i + 16 <= String.length r1
           && (String.sub r1 i 16 = "serving-report/1" || has (i + 1))
         in
         has 0));
  List.iter
    (fun ((jw, rw), (r, _, _)) ->
       Alcotest.(check string)
         (Printf.sprintf "serving report bytes @ jw=%d rw=%d" jw rw) r1 r)
    (List.tl runs)

let test_span_merge_and_profile_sum () =
  let _, m, requests = measured_report (1, 1) in
  let r = m.Server.Serving.me_result in
  let n = Array.length requests in
  let spans = r.Server.Serving.sv_spans in
  Alcotest.(check int) "one span per request" n (Array.length spans);
  Array.iteri
    (fun i (sp : Obs.Span.span) ->
       Alcotest.(check int)
         (Printf.sprintf "span %d in request-slot order" i) i
         sp.Obs.Span.sp_slot;
       Alcotest.(check int)
         (Printf.sprintf "span %d total ties to per-request cycles" i)
         r.Server.Serving.sv_cycles.(i) sp.Obs.Span.sp_total)
    spans;
  let total = Array.fold_left ( + ) 0 r.Server.Serving.sv_cycles in
  Alcotest.(check int)
    "folded profile sums exactly to total serving cycles" total
    m.Server.Serving.me_profile_total;
  Alcotest.(check int) "folded entries agree with the merged profile"
    m.Server.Serving.me_profile_total
    (List.fold_left (fun a (_, c) -> a + c) 0 m.Server.Serving.me_profile);
  (* the mid-burst retranslate fired on exactly one request's timeline *)
  let idx = Obs.Span.phase_index Obs.Span.RetransPause in
  Alcotest.(check int) "one retranslate-pause exposure" 1
    (Array.fold_left (fun a sp -> a + sp.Obs.Span.sp_counts.(idx)) 0 spans);
  (* lazy in-burst traffic was actually measured *)
  let enq = Obs.Span.phase_index Obs.Span.Enqueue in
  Alcotest.(check bool) "miss-enqueue phase saw traffic" true
    (Array.exists (fun sp -> sp.Obs.Span.sp_counts.(enq) > 0) spans)

(* ---- tc-print: cycle ranking ---- *)

let test_tc_print_sort_cycles () =
  let report () =
    let _, eng = warmed_engine () in
    Core.Tc_print.report ~top:10 ~sort:Core.Tc_print.By_cycles eng
  in
  let r1 = report () and r2 = report () in
  Alcotest.(check string) "cycle ranking is byte-stable" r1 r2;
  let header = List.hd (String.split_on_char '\n' r1) in
  Alcotest.(check bool) "header names the ranking key" true
    (let rec has i =
       i + 9 <= String.length header
       && (String.sub header i 9 = "by cycles" || has (i + 1))
     in
     has 0);
  (* ranked cycles are non-increasing *)
  let ranked =
    List.filter (fun l -> String.length l > 0 && l.[0] = '#')
      (String.split_on_char '\n' r1)
  in
  let cycle_of line =
    (* cycles=N, followed by the liveness columns *)
    let pat = "cycles=" in
    let n = String.length line in
    let rec find i =
      if i + String.length pat > n then Alcotest.failf "no cycles= in %s" line
      else if String.sub line i (String.length pat) = pat then
        i + String.length pat
      else find (i + 1)
    in
    let start = find 0 in
    let rec fin j = if j < n && line.[j] >= '0' && line.[j] <= '9'
      then fin (j + 1) else j
    in
    int_of_string (String.sub line start (fin start - start))
  in
  let cs = List.map cycle_of ranked in
  Alcotest.(check bool) "report lists translations" true (cs <> []);
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "cycle ranking is non-increasing" true
    (non_increasing cs)

(* ---- lease trace: sequential seq with a dedicated drainer live ---- *)

let test_lease_trace_seq () =
  let u, eng =
    warmed_engine ~jit_workers:2 ~request_workers:2 ~trace:"lease" ()
  in
  let l0 = Obs.Vmstats.counter_value "lazy_translate.compiled" in
  let requests = Server.Serving.mix ~rounds:4 () in
  ignore (Server.Serving.run u eng requests);
  let lines = Obs.Trace.drain () in
  Obs.Trace.configure ~spec:None ();
  Alcotest.(check bool) "burst produced lease events" true (lines <> []);
  List.iteri
    (fun i line ->
       Alcotest.(check int)
         (Printf.sprintf "event %d: seq is contiguous" i) i
         (field_int line "seq");
       Alcotest.(check bool)
         (Printf.sprintf "event %d: category is lease" i) true
         (let pat = "\"cat\": \"lease\"" in
          let n = String.length line and p = String.length pat in
          let rec has j =
            j + p <= n && (String.sub line j p = pat || has (j + 1))
          in
          has 0))
    lines;
  (* drain batching is schedule-dependent; the compile total is not *)
  let compiled =
    List.fold_left (fun a line -> a + field_int line "compiled") 0 lines
  in
  Alcotest.(check int) "lease-drain compiles tie out against the counter"
    (Obs.Vmstats.counter_value "lazy_translate.compiled" - l0) compiled

(* ---- snapshots: one gauge line every N completed requests ---- *)

let test_snapshot_stream () =
  let u, eng = warmed_engine () in
  let path = Filename.temp_file "snap" ".jsonl" in
  Obs.Snapshot.configure ~path ~every:10 ();
  let requests = Server.Serving.mix ~rounds:4 () in
  let m = Server.Serving.measure u eng requests in
  ignore m;
  Obs.Snapshot.close ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do lines := input_line ic :: !lines done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per interval"
    (Array.length requests / 10) (List.length lines);
  List.iteri
    (fun i line ->
       Alcotest.(check int)
         (Printf.sprintf "line %d: req_done is the interval boundary" i)
         ((i + 1) * 10)
         (field_int line "req_done"))
    lines

let suite =
  ( "spans",
    [ Alcotest.test_case "vmstats percentile estimation" `Quick
        test_percentile;
      Alcotest.test_case "vmstats percentile singleton" `Quick
        test_percentile_singleton;
      Alcotest.test_case "serving histogram resets at burst start" `Quick
        test_histogram_burst_reset;
      Alcotest.test_case "serving report is bit-identical across configs"
        `Quick test_report_bit_identical;
      Alcotest.test_case "span merge order + profile sum invariant" `Quick
        test_span_merge_and_profile_sum;
      Alcotest.test_case "tc-print cycle ranking" `Quick
        test_tc_print_sort_cycles;
      Alcotest.test_case "lease trace seq stays sequential" `Quick
        test_lease_trace_seq;
      Alcotest.test_case "snapshot stream" `Quick test_snapshot_stream ] )
