(** Differential parity suite for the flattened (closure-threaded)
    interpreter dispatch loop.

    Every observable — program output, aggregate output hash, simulated
    cycle ledger, retired-instruction count, per-opcode vmstats counters,
    heap audit — must be bit-identical between the threaded loop and the
    legacy match-on-variant loop, for any (jit mode x worker count)
    combination, and across flat-code invalidation (in-place bytecode
    rewrites, unit reloads, retranslate-all mid-burst). *)

let with_dispatch (threaded : bool) (f : unit -> 'a) : 'a =
  let old = !Vm.Interp.threaded_dispatch in
  Vm.Interp.threaded_dispatch := threaded;
  Fun.protect ~finally:(fun () -> Vm.Interp.threaded_dispatch := old) f

(* ---- Synthetic programs exercising distinct interpreter surfaces ---- *)

(* deep recursion + mutual recursion: call/return, arith, compare *)
let prog_recursion = {|
  function fib($n) { if ($n < 2) { return $n; } return fib($n - 1) + fib($n - 2); }
  function even($n) { if ($n == 0) { return true; } return odd($n - 1); }
  function odd($n) { if ($n == 0) { return false; } return even($n - 1); }
  function main() {
    echo fib(15), "|";
    echo even(10) ? "E" : "o";
    echo odd(7) ? "O" : "e";
  }
|}

(* string/array churn: appends, foreach (keyed and plain), dict writes,
   concat, builtins — the refcount-heavy shapes *)
let prog_strings_arrays = {|
  function main() {
    $a = [];
    for ($i = 0; $i < 50; $i++) { $a[] = $i * $i; }
    $s = 0;
    foreach ($a as $k => $v) { $s = $s + $v - $k; }
    $words = ["alpha", "beta", "gamma", "delta"];
    $t = "";
    foreach ($words as $w) { $t = $t . substr($w, 0, 2) . "-"; }
    $m = [];
    $m["x"] = 1;
    $m["y"] = 2;
    $m["x"] = $m["x"] + 10;
    echo $s, "|", $t, "|", strlen($t), "|", count($a), "|", $m["x"] + $m["y"];
  }
|}

(* exceptions across frames, catch-class selection, unwinding through
   loops — the non-local control flow paths *)
let prog_exceptions = {|
  function risky($n) {
    if ($n % 3 == 0) { throw new RuntimeException("m" . $n); }
    return $n * 2;
  }
  function main() {
    $total = 0;
    $caught = 0;
    for ($i = 1; $i <= 12; $i++) {
      try { $total = $total + risky($i); }
      catch (RuntimeException $e) { $caught = $caught + 1; echo $e->getMessage(), ";"; }
    }
    echo "|", $total, "|", $caught;
    try {
      try { throw new InvalidArgumentException("inner"); }
      catch (RuntimeException $e) { echo "wrong"; }
    } catch (Exception $e) { echo "|outer:", $e->getMessage(); }
  }
|}

let programs =
  [ ("recursion", prog_recursion);
    ("strings-arrays", prog_strings_arrays);
    ("exceptions", prog_exceptions) ]

(* Run a program start to finish in the current dispatch mode and return
   (output, ledger cycles, retired instrs); assert a clean heap. *)
let run_measured (src : string) : string * int * int =
  let u = Vm.Loader.load src in
  let c0 = Runtime.Ledger.read () in
  let i0 = Vm.Interp.instr_count () in
  let r, out =
    Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" [])
  in
  Runtime.Heap.decref r;
  let cycles = Runtime.Ledger.read () - c0 in
  let instrs = Vm.Interp.instr_count () - i0 in
  Alcotest.(check (list string))
    "no leaked heap objects" [] (Runtime.Heap.live_allocations ());
  (out, cycles, instrs)

let test_program_parity () =
  List.iter
    (fun (name, src) ->
       let out_t, cyc_t, ins_t = with_dispatch true (fun () -> run_measured src) in
       let out_m, cyc_m, ins_m = with_dispatch false (fun () -> run_measured src) in
       Alcotest.(check string) (name ^ ": output") out_m out_t;
       Alcotest.(check int) (name ^ ": ledger cycles") cyc_m cyc_t;
       Alcotest.(check int) (name ^ ": retired instrs") ins_m ins_t;
       Alcotest.(check bool) (name ^ ": did some work") true (ins_t > 0))
    programs

(* Per-opcode vmstats counters must agree exactly: the threaded loop bumps
   pre-resolved handles from the flat opcode table, the legacy loop goes
   through the lazy per-op registration — same names, same counts. *)
let test_op_counter_parity () =
  let op_counts (threaded : bool) (src : string) : int array =
    with_dispatch threaded (fun () ->
        let was = !Obs.Vmstats.enabled in
        Obs.Vmstats.enabled := true;
        Fun.protect ~finally:(fun () -> Obs.Vmstats.enabled := was)
          (fun () ->
             let u = Vm.Loader.load src in
             let before =
               Array.map
                 (fun n -> (Obs.Vmstats.counter ("interp.op." ^ n)).Obs.Vmstats.c_count)
                 Hhbc.Instr.opcode_names
             in
             let r, _ =
               Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" [])
             in
             Runtime.Heap.decref r;
             Array.mapi
               (fun i n ->
                  (Obs.Vmstats.counter ("interp.op." ^ n)).Obs.Vmstats.c_count
                  - before.(i))
               Hhbc.Instr.opcode_names))
  in
  List.iter
    (fun (name, src) ->
       let t = op_counts true src in
       let m = op_counts false src in
       Alcotest.(check (array int)) (name ^ ": per-opcode counters") m t;
       Alcotest.(check bool) (name ^ ": counted some ops") true
         (Array.exists (fun c -> c > 0) t))
    programs

(* Perflab in pure-interpreter mode: the whole request mix runs through
   whichever dispatch loop is selected; hash and weighted cycles must
   agree to the bit. *)
let test_perflab_parity () =
  let measure threaded =
    with_dispatch threaded (fun () -> Server.Perflab.run Core.Jit_options.Interp)
  in
  let rt = measure true in
  let rm = measure false in
  Alcotest.(check int) "perflab interp: output hash"
    rm.Server.Perflab.r_output_hash rt.Server.Perflab.r_output_hash;
  Alcotest.(check (float 0.0)) "perflab interp: weighted cycles"
    rm.Server.Perflab.r_weighted rt.Server.Perflab.r_weighted

(* ---- Serving parity: (dispatch mode) x (worker count) x (jit mode) ---- *)

let check_serving_equal what (r1 : Server.Serving.result)
    (r2 : Server.Serving.result) ~cycles =
  Alcotest.(check (array string)) (what ^ ": per-request outputs")
    r1.Server.Serving.sv_outputs r2.Server.Serving.sv_outputs;
  Alcotest.(check int) (what ^ ": output hash")
    r1.Server.Serving.sv_output_hash r2.Server.Serving.sv_output_hash;
  (* per-request cycle attribution is schedule-dependent under a JIT with
     lazy translation, so only compare it where the caller knows the
     translation state is identical *)
  if cycles then
    Alcotest.(check (array int)) (what ^ ": per-request cycles")
      r1.Server.Serving.sv_cycles r2.Server.Serving.sv_cycles

let test_serving_parity_region () =
  let run threaded workers ?trigger_at () =
    with_dispatch threaded (fun () ->
        Test_parallel.serving_run ?trigger_at workers)
  in
  let ref_ = run false 1 () in
  check_serving_equal "region serving, threaded @ 1 worker" ref_
    (run true 1 ()) ~cycles:true;
  check_serving_equal "region serving, threaded @ 4 workers" ref_
    (run true 4 ()) ~cycles:false;
  check_serving_equal "region serving, legacy @ 4 workers" ref_
    (run false 4 ()) ~cycles:false;
  (* full retranslate-all firing mid-burst: flat code for lazily
     rebuilt translations must stay coherent in both dispatch modes *)
  let n = Array.length (Server.Serving.mix ~rounds:6 ()) in
  let ref_tr = run false 1 ~trigger_at:(n / 3) () in
  check_serving_equal "retranslate mid-burst, threaded @ 4 workers" ref_tr
    (run true 4 ~trigger_at:(n / 3) ()) ~cycles:false

let test_serving_parity_interp () =
  (* pure interpreter: no lazy translation, so per-request cycles are
     schedule-independent and must match at any worker count *)
  let run threaded workers =
    with_dispatch threaded (fun () ->
        Test_parallel.serving_run ~mode:Core.Jit_options.Interp workers)
  in
  let ref_ = run false 1 in
  check_serving_equal "interp serving, threaded @ 1 worker" ref_
    (run true 1) ~cycles:true;
  check_serving_equal "interp serving, threaded @ 4 workers" ref_
    (run true 4) ~cycles:true;
  check_serving_equal "interp serving, legacy @ 4 workers" ref_
    (run false 4) ~cycles:true

(* ---- Flat-code invalidation ---- *)

(* In-place bytecode rewrite: run once (flat code cached), let hhbbc
   rewrite function bodies in place (which calls [invalidate_flat]), run
   again — the second run must re-flatten and agree with a fresh load
   that had the rewrite applied before any execution. *)
let test_invalidation_bytecode_rewrite () =
  with_dispatch true (fun () ->
      let src = prog_strings_arrays in
      let run_main u =
        let r, out =
          Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" [])
        in
        Runtime.Heap.decref r;
        out
      in
      let u = Vm.Loader.load src in
      let out_before = run_main u in
      ignore (Hhbbc.Assert_insert.run u);
      ignore (Hhbbc.Bc_opt.run u);
      let out_after = run_main u in
      Alcotest.(check string) "output stable across in-place rewrite"
        out_before out_after;
      (* fresh reference: rewrite first, then run *)
      let u2 = Vm.Loader.load src in
      ignore (Hhbbc.Assert_insert.run u2);
      ignore (Hhbbc.Bc_opt.run u2);
      Alcotest.(check string) "matches fresh post-rewrite load"
        out_before (run_main u2))

(* Unit reload: loading a new unit bumps the global flat epoch; stale
   flat code (interned constants, resolved call targets from the old
   unit) must never leak into the new unit's execution. *)
let test_invalidation_unit_reload () =
  with_dispatch true (fun () ->
      let go src =
        let u = Vm.Loader.load src in
        let r, out =
          Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" [])
        in
        Runtime.Heap.decref r;
        out
      in
      let a1 = go prog_recursion in
      let b1 = go prog_exceptions in
      let a2 = go prog_recursion in
      let b2 = go prog_exceptions in
      Alcotest.(check string) "reload run 1 = run 2 (recursion)" a1 a2;
      Alcotest.(check string) "reload run 1 = run 2 (exceptions)" b1 b2)

let suite =
  ( "threaded-dispatch",
    [
      Alcotest.test_case "program parity (out/cycles/instrs)" `Quick
        test_program_parity;
      Alcotest.test_case "per-opcode counter parity" `Quick
        test_op_counter_parity;
      Alcotest.test_case "perflab interp parity" `Slow test_perflab_parity;
      Alcotest.test_case "serving parity: region x workers" `Slow
        test_serving_parity_region;
      Alcotest.test_case "serving parity: interp x workers" `Slow
        test_serving_parity_interp;
      Alcotest.test_case "invalidation: in-place bytecode rewrite" `Quick
        test_invalidation_bytecode_rewrite;
      Alcotest.test_case "invalidation: unit reload" `Quick
        test_invalidation_unit_reload;
    ] )
