(** End-to-end JIT tests: every program runs under the interpreter and under
    each JIT mode (Tracelet / ProfileOnly / Region, the latter both before
    and after retranslate-all); outputs must be identical and the heap audit
    clean.  This is the master differential suite covering the whole
    compiler pipeline. *)

let run_mode (mode : Core.Jit_options.mode) ?(retranslate = false)
    ?(tweak = fun (_ : Core.Jit_options.t) -> ()) (src : string) : string =
  let u = Vm.Loader.load src in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.mode <- mode;
  tweak opts;
  let eng = Core.Engine.install ~opts u in
  let call () =
    let r, out = Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" []) in
    Runtime.Heap.decref r;
    out
  in
  let out1 = call () in
  if retranslate then begin
    ignore (Core.Engine.retranslate_all eng);
    let out2 = call () in
    Alcotest.(check string) "same output after retranslate-all" out1 out2;
    (* run once more to exercise optimized code steadily *)
    let out3 = call () in
    Alcotest.(check string) "stable optimized output" out1 out3
  end else begin
    (* warm: run twice so translations get reused *)
    let out2 = call () in
    Alcotest.(check string) "same output on reuse" out1 out2
  end;
  let live = Runtime.Heap.live_allocations () in
  Alcotest.(check (list string)) "no leaks" [] live;
  out1

let differential name src =
  Alcotest.test_case name `Quick (fun () ->
      let expected = run_mode Core.Jit_options.Interp src in
      let tracelet = run_mode Core.Jit_options.Tracelet src in
      Alcotest.(check string) "tracelet == interp" expected tracelet;
      let profile = run_mode Core.Jit_options.ProfileOnly src in
      Alcotest.(check string) "profile == interp" expected profile;
      let region = run_mode Core.Jit_options.Region ~retranslate:true src in
      Alcotest.(check string) "region == interp" expected region)

let programs = [
  ("arith loop", {|
    function main() {
      $s = 0;
      for ($i = 0; $i < 50; $i++) { $s += $i * 3 - 1; }
      echo $s;
    } |});
  ("float mix", {|
    function main() {
      $x = 1.5;
      for ($i = 0; $i < 20; $i++) { $x = $x * 1.1 + 0.3; }
      echo (int)$x;
    } |});
  ("string building", {|
    function main() {
      $s = "";
      for ($i = 0; $i < 10; $i++) { $s = $s . $i . ","; }
      echo strlen($s), ":", $s;
    } |});
  ("paper avgPositive int and double", {|
    function avgPositive($arr) {
      $sum = 0;
      $n = 0;
      $size = count($arr);
      for ($i = 0; $i < $size; $i++) {
        $elem = $arr[$i];
        if ($elem > 0) { $sum = $sum + $elem; $n++; }
      }
      if ($n == 0) { throw new Exception("no positive numbers"); }
      return $sum / $n;
    }
    function main() {
      echo avgPositive([1, 2, 3, 4, 0 - 10]);
      echo "/";
      echo avgPositive([0.5, 1.5, 2.5]);
      echo "/";
      try { echo avgPositive([0 - 1]); }
      catch (Exception $e) { echo "E:", $e->getMessage(); }
    } |});
  ("function calls", {|
    function add($a, $b) { return $a + $b; }
    function apply_twice($x) { return add(add($x, 1), add($x, 2)); }
    function main() {
      $t = 0;
      for ($i = 0; $i < 25; $i++) { $t = add($t, apply_twice($i)); }
      echo $t;
    } |});
  ("recursion fib", {|
    function fib($n) { if ($n < 2) { return $n; } return fib($n - 1) + fib($n - 2); }
    function main() { echo fib(15); }
  |});
  ("objects getters setters", {|
    class Point {
      public $x = 0;
      public $y = 0;
      function __construct($x, $y) { $this->x = $x; $this->y = $y; }
      function getX() { return $this->x; }
      function getY() { return $this->y; }
      function scale($f) { $this->x = $this->x * $f; $this->y = $this->y * $f; }
    }
    function main() {
      $t = 0;
      for ($i = 0; $i < 20; $i++) {
        $p = new Point($i, $i + 1);
        $p->scale(2);
        $t += $p->getX() + $p->getY();
      }
      echo $t;
    } |});
  ("polymorphic dispatch", {|
    interface Shape { function area(); }
    class Square implements Shape {
      public $s = 0;
      function __construct($s) { $this->s = $s; }
      function area() { return $this->s * $this->s; }
    }
    class Rect implements Shape {
      public $w = 0;
      public $h = 0;
      function __construct($w, $h) { $this->w = $w; $this->h = $h; }
      function area() { return $this->w * $this->h; }
    }
    function main() {
      $shapes = [];
      for ($i = 0; $i < 10; $i++) {
        if ($i % 2 == 0) { $shapes[] = new Square($i); }
        else { $shapes[] = new Rect($i, $i + 1); }
      }
      $t = 0;
      foreach ($shapes as $sh) { $t += $sh->area(); }
      echo $t;
    } |});
  ("arrays cow heavy", {|
    function main() {
      $base = [1, 2, 3, 4, 5];
      $t = 0;
      for ($i = 0; $i < 15; $i++) {
        $copy = $base;
        $copy[$i % 5] = $i * 100;
        $t += $copy[$i % 5] + $base[$i % 5];
      }
      echo $t, "/", implode(",", $base);
    } |});
  ("keyed arrays", {|
    function main() {
      $m = [];
      for ($i = 0; $i < 12; $i++) { $m["k" . $i] = $i * $i; }
      $t = 0;
      foreach ($m as $k => $v) { $t += $v + strlen($k); }
      echo $t, "/", count($m);
    } |});
  ("destructors under jit", {|
    class Tracker {
      public $id = 0;
      function __construct($id) { $this->id = $id; }
      function __destruct() { echo "~", $this->id; }
    }
    function work($i) {
      $t = new Tracker($i);
      return $i * 2;
    }
    function main() {
      $s = 0;
      for ($i = 0; $i < 5; $i++) { $s += work($i); }
      echo "=", $s;
    } |});
  ("exceptions through jit frames", {|
    function risky($n) {
      if ($n % 7 == 3) { throw new RuntimeException("boom" . $n); }
      return $n;
    }
    function main() {
      $t = 0;
      for ($i = 0; $i < 20; $i++) {
        try { $t += risky($i); }
        catch (RuntimeException $e) { $t += 1000; }
      }
      echo $t;
    } |});
  ("mixed types guard pressure", {|
    function process($v) {
      if (is_int($v)) { return $v * 2; }
      if (is_string($v)) { return strlen($v); }
      if (is_float($v)) { return (int)$v; }
      return 0;
    }
    function main() {
      $vals = [1, "hello", 2.5, 7, "x", 3.25, 10];
      $t = 0;
      for ($round = 0; $round < 5; $round++) {
        foreach ($vals as $v) { $t += process($v); }
      }
      echo $t;
    } |});
  ("nested data", {|
    function main() {
      $matrix = [];
      for ($i = 0; $i < 5; $i++) {
        $row = [];
        for ($j = 0; $j < 5; $j++) { $row[] = $i * $j; }
        $matrix[] = $row;
      }
      $t = 0;
      foreach ($matrix as $row) { $t += array_sum($row); }
      $matrix[2][2] = 999;
      echo $t, "/", $matrix[2][2], "/", $matrix[2][1];
    } |});
  ("switch and logic", {|
    function grade($n) {
      switch (intdiv($n, 10)) {
        case 10:
        case 9: return "A";
        case 8: return "B";
        case 7: return "C";
        default: return "F";
      }
    }
    function main() {
      echo grade(95), grade(87), grade(73), grade(42), grade(100);
    } |});
  ("builtins mix", {|
    function main() {
      $words = explode(" ", "the quick brown fox jumps");
      $t = "";
      foreach ($words as $w) { $t .= strtoupper(substr($w, 0, 1)); }
      echo $t, "/", count($words), "/", implode("-", array_reverse($words));
    } |});
]

let tests = List.map (fun (n, s) -> differential n s) programs

(* --- targeted engine behaviour tests --- *)

let t name f = Alcotest.test_case name `Quick f

let engine_tests = [
  t "region mode produces optimized translations" (fun () ->
      let src = {|
        function hot($n) { $s = 0; for ($i = 0; $i < $n; $i++) { $s += $i; } return $s; }
        function main() { $t = 0; for ($j = 0; $j < 10; $j++) { $t += hot(20); } echo $t; }
      |} in
      let u = Vm.Loader.load src in
      let opts = Core.Jit_options.default () in
      opts.mode <- Core.Jit_options.Region;
      let eng = Core.Engine.install ~opts u in
      let r, _ = Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" []) in
      Runtime.Heap.decref r;
      Alcotest.(check bool) "profiling translations exist" true (eng.n_profiling > 0);
      let n = Core.Engine.retranslate_all eng in
      Alcotest.(check bool) "optimized translations produced" true (n > 0);
      let r, _ = Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" []) in
      Runtime.Heap.decref r;
      Alcotest.(check (list string)) "no leaks" [] (Runtime.Heap.live_allocations ()));
  t "optimized mode is faster than interpreter" (fun () ->
      let src = {|
        function main() {
          $s = 0;
          for ($i = 0; $i < 400; $i++) { $s += $i * 2 + 1; }
          echo $s;
        } |} in
      let measure mode retrans =
        let u = Vm.Loader.load src in
        ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
        let opts = Core.Jit_options.default () in
        opts.mode <- mode;
        let eng = Core.Engine.install ~opts u in
        (* warm up *)
        let r, _ = Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" []) in
        Runtime.Heap.decref r;
        if retrans then ignore (Core.Engine.retranslate_all eng);
        let c0 = Runtime.Ledger.read () in
        let r, _ = Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" []) in
        Runtime.Heap.decref r;
        Runtime.Ledger.read () - c0
      in
      let interp_cost = measure Core.Jit_options.Interp false in
      let region_cost = measure Core.Jit_options.Region true in
      Alcotest.(check bool)
        (Printf.sprintf "region (%d) beats interp (%d)" region_cost interp_cost)
        true (region_cost * 2 < interp_cost));
  t "retranslate-all invalidates dispatch caches" (fun () ->
      (* stale-translation reuse through the monomorphic entry caches or
         the smashed translation links must be impossible after the
         translation table is rebuilt *)
      let src = {|
        class Counter {
          public $n = 0;
          function bump($d) { $this->n = $this->n + $d; return $this->n; }
        }
        function hot($n) { $s = 0; for ($i = 0; $i < $n; $i++) { $s += $i; } return $s; }
        function main() {
          $c = new Counter();
          $t = 0;
          for ($j = 0; $j < 12; $j++) { $t += hot(25) + $c->bump($j); }
          echo $t;
        } |} in
      let u = Vm.Loader.load src in
      ignore (Hhbbc.Assert_insert.run u);
      ignore (Hhbbc.Bc_opt.run u);
      let opts = Core.Jit_options.default () in
      opts.mode <- Core.Jit_options.Region;
      let eng = Core.Engine.install ~opts u in
      let call () =
        let r, out = Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" []) in
        Runtime.Heap.decref r;
        out
      in
      let out1 = call () in
      let _ = call () in
      (* collect every translation reachable from the dispatch tables *)
      let collect () =
        let ids = ref [] and monos = ref 0 in
        Array.iter
          (fun row ->
             Array.iter
               (function
                 | Some (sl : Core.Engine.slot) ->
                   (match sl.sl_mono with
                    | Some ((tr : Core.Translation.t), _) ->
                      incr monos;
                      ids := tr.tr_id :: !ids
                    | None -> ());
                   for i = 0 to sl.sl_len - 1 do
                     ids := sl.sl_chain.(i).Core.Translation.tr_id :: !ids
                   done
                 | None -> ())
               row)
          eng.Core.Engine.trans;
        (List.sort_uniq compare !ids, !monos)
      in
      let old_ids, old_monos = collect () in
      Alcotest.(check bool) "warm translations exist" true (old_ids <> []);
      Alcotest.(check bool) "monomorphic caches are warm" true (old_monos > 0);
      (* keep one pre-retranslate translation to inspect its links later *)
      let old_tr =
        let found = ref None in
        Array.iter
          (fun row ->
             Array.iter
               (function
                 | Some (sl : Core.Engine.slot) ->
                   if !found = None && sl.sl_len > 0 then
                     found := Some sl.sl_chain.(0)
                 | None -> ())
               row)
          eng.Core.Engine.trans;
        Option.get !found
      in
      let old_gen = eng.Core.Engine.generation in
      ignore (Core.Engine.retranslate_all eng);
      Alcotest.(check bool) "generation bumped" true
        (eng.Core.Engine.generation > old_gen);
      (* immediately after the reset every cache is empty... *)
      let fresh_ids, fresh_monos = collect () in
      Alcotest.(check int) "monomorphic caches dropped" 0 fresh_monos;
      (* ...and nothing from the old table survived into the new one *)
      List.iter
        (fun id ->
           Alcotest.(check bool)
             (Printf.sprintf "translation %d is not stale" id)
             false (List.mem id old_ids))
        fresh_ids;
      (* links smashed before the reset are dead by generation mismatch *)
      Array.iter
        (fun (lk : Core.Translation.link) ->
           if lk.lk_target <> None then
             Alcotest.(check bool) "stale link is unsmashed" true
               (lk.lk_gen < eng.Core.Engine.generation))
        old_tr.Core.Translation.tr_links;
      let out2 = call () in
      Alcotest.(check string) "same output after retranslate-all" out1 out2;
      (* steady state repopulates the caches with fresh translations only *)
      let _ = call () in
      let new_ids, _ = collect () in
      List.iter
        (fun id ->
           Alcotest.(check bool)
             (Printf.sprintf "steady-state translation %d is not stale" id)
             false (List.mem id old_ids))
        new_ids;
      Alcotest.(check (list string)) "no leaks" [] (Runtime.Heap.live_allocations ()));
  t "output hash identical with dispatch caches disabled" (fun () ->
      (* the monomorphic / link / method-dispatch caches are wall-clock
         engineering only: the Region perflab must produce bit-identical
         output with them off *)
      let hash_with caches =
        let r =
          Server.Perflab.run Core.Jit_options.Region
            ~tweak:(fun o -> o.Core.Jit_options.dispatch_caches <- caches)
        in
        r.Server.Perflab.r_output_hash
      in
      let on = hash_with true in
      let off = hash_with false in
      Alcotest.(check int) "hash(caches on) = hash(caches off)" on off);
  t "code budget falls back to interpreter" (fun () ->
      let src = {|
        function main() { $s = 0; for ($i = 0; $i < 30; $i++) { $s += $i; } echo $s; }
      |} in
      let u = Vm.Loader.load src in
      let opts = Core.Jit_options.default () in
      opts.mode <- Core.Jit_options.Tracelet;
      opts.code_budget <- Some 1;       (* nothing fits *)
      ignore (Core.Engine.install ~opts u);
      let r, out = Vm.Output.capture (fun () -> Vm.Interp.call_by_name u "main" []) in
      Runtime.Heap.decref r;
      Alcotest.(check string) "still correct" "435" out;
      Alcotest.(check (list string)) "no leaks" [] (Runtime.Heap.live_allocations ()));
]

let suite = ("jit", tests @ engine_tests)
