(** Parallel retranslate-all (multi-domain compile, deterministic publish):

    - Jit_worker: every task runs exactly once, results come back in task
      order for any worker count, the queue tolerates more workers than
      tasks, and a raising task doesn't abort the rest (first exception
      re-raised after the join).
    - Determinism: output hash, code-cache byte totals, and the tc-print
      report are identical for [--jit-workers] in {1, 2, 4} on both the
      perflab mix and a direct endpoints workload; JIT trace output (ring
      drain, seq numbers included) is stable too.
    - Vmstats exactness: compile-phase counters (region formation, pass
      pipeline) merge from per-worker shards without loss or double
      counting, so totals match the serial run exactly.
    - Stress: requests interleaved with repeated retranslations at 4
      workers keep producing interpreter-identical output. *)

let workers_counts = [ 1; 2; 4 ]

(* ---- Jit_worker queue ---- *)

let test_worker_order () =
  List.iter
    (fun w ->
       let tasks = Array.init 23 (fun i () -> i * i) in
       let r = Core.Jit_worker.run ~workers:w tasks in
       Alcotest.(check (array int))
         (Printf.sprintf "results in task order @ %d workers" w)
         (Array.init 23 (fun i -> i * i))
         r)
    [ 1; 2; 4; 9; 64 ]

let test_worker_empty () =
  Alcotest.(check (array int)) "no tasks" [||]
    (Core.Jit_worker.run ~workers:4 [||])

let test_worker_exn () =
  let ran = Array.make 10 false in
  let tasks =
    Array.init 10
      (fun i () ->
         ran.(i) <- true;
         if i = 3 then failwith "boom3";
         if i = 7 then failwith "boom7";
         i)
  in
  (match Core.Jit_worker.run ~workers:4 tasks with
   | _ -> Alcotest.fail "expected a task exception to re-raise"
   | exception Failure msg ->
     Alcotest.(check string) "lowest-index exception wins" "boom3" msg);
  Alcotest.(check bool) "every task still ran" true
    (Array.for_all Fun.id ran)

(* ---- Determinism across worker counts ---- *)

let perflab_run (w : int) : int * int * string =
  let r =
    Server.Perflab.run Core.Jit_options.Region
      ~tweak:(fun o -> o.Core.Jit_options.jit_workers <- w)
  in
  ( r.Server.Perflab.r_output_hash,
    r.Server.Perflab.r_code_bytes,
    Core.Tc_print.report ~top:10 r.Server.Perflab.r_engine )

let test_perflab_determinism () =
  let runs = List.map (fun w -> (w, perflab_run w)) workers_counts in
  let _, (h1, b1, tc1) = List.hd runs in
  List.iter
    (fun (w, (h, b, tc)) ->
       Alcotest.(check int)
         (Printf.sprintf "perflab output hash @ %d workers" w) h1 h;
       Alcotest.(check int)
         (Printf.sprintf "perflab code bytes @ %d workers" w) b1 b;
       Alcotest.(check string)
         (Printf.sprintf "perflab tc-print @ %d workers" w) tc1 tc)
    (List.tl runs)

(* Direct endpoints workload: warm every endpoint, retranslate, keep
   serving; returns the full output transcript plus cache/tc-print state. *)
let endpoints_run ?(trace = false) (w : int) : string * int * string =
  let u = Vm.Loader.load Workloads.Endpoints.source in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.Core.Jit_options.mode <- Core.Jit_options.Region;
  opts.Core.Jit_options.jit_workers <- w;
  if trace then
    opts.Core.Jit_options.trace <- Some "translate,retranslate-all,link";
  let eng = Core.Engine.install ~opts u in
  let buf = Buffer.create 4096 in
  let serve rounds salt =
    for k = 1 to rounds do
      List.iteri
        (fun i ep ->
           Buffer.add_string buf
             (Server.Perflab.call_endpoint u ep (salt + i + k)))
        Workloads.Endpoints.endpoints
    done
  in
  serve 30 0;
  ignore (Core.Engine.retranslate_all eng);
  serve 5 7;
  (Buffer.contents buf, Core.Engine.code_bytes eng,
   Core.Tc_print.report ~top:8 eng)

let test_endpoints_determinism () =
  let runs = List.map (fun w -> (w, endpoints_run w)) workers_counts in
  let _, (out1, b1, tc1) = List.hd runs in
  List.iter
    (fun (w, (out, b, tc)) ->
       Alcotest.(check string)
         (Printf.sprintf "endpoints output @ %d workers" w) out1 out;
       Alcotest.(check int)
         (Printf.sprintf "endpoints code bytes @ %d workers" w) b1 b;
       Alcotest.(check string)
         (Printf.sprintf "endpoints tc-print @ %d workers" w) tc1 tc)
    (List.tl runs)

let test_trace_determinism () =
  let trace_run w =
    ignore (endpoints_run ~trace:true w);
    let lines = Obs.Trace.drain () in
    Obs.Trace.configure ~spec:None ();
    lines
  in
  let runs = List.map (fun w -> (w, trace_run w)) workers_counts in
  let _, l1 = List.hd runs in
  Alcotest.(check bool) "trace produced events" true (l1 <> []);
  List.iter
    (fun (w, l) ->
       Alcotest.(check (list string))
         (Printf.sprintf "trace events (incl. seq) @ %d workers" w) l1 l)
    (List.tl runs)

(* ---- Vmstats shard-merge exactness ---- *)

let compile_counters =
  [ "region.formed"; "region.blocks"; "region.arcs_covered";
    "pass.simplify.changed"; "pass.load_elim.changed"; "pass.gvn.changed";
    "pass.store_elim.changed"; "pass.rce.changed"; "pass.dce.changed";
    "pass.unreachable.changed"; "translate.rejected"; "retranslate.runs" ]

let test_vmstats_exact () =
  let counters_run w =
    ignore (endpoints_run w);
    List.map (fun n -> (n, Obs.Vmstats.counter_value n)) compile_counters
  in
  let runs = List.map (fun w -> (w, counters_run w)) workers_counts in
  let _, c1 = List.hd runs in
  Alcotest.(check bool) "compile-phase counters are live" true
    (List.exists (fun (_, v) -> v > 0) c1);
  List.iter
    (fun (w, c) ->
       List.iter2
         (fun (n, v1) (_, v) ->
            Alcotest.(check int)
              (Printf.sprintf "counter %s @ %d workers" n w) v1 v)
         c1 c)
    (List.tl runs)

(* ---- Stress: serving interleaved with repeated retranslations ---- *)

let test_stress_interleave () =
  let interp_out = ref "" in
  let region_out = ref "" in
  let run_mode (mode : Core.Jit_options.mode) (sink : string ref) =
    let u = Vm.Loader.load Workloads.Endpoints.source in
    ignore (Hhbbc.Assert_insert.run u);
    ignore (Hhbbc.Bc_opt.run u);
    let opts = Core.Jit_options.default () in
    opts.Core.Jit_options.mode <- mode;
    opts.Core.Jit_options.jit_workers <- 4;
    let eng = Core.Engine.install ~opts u in
    let buf = Buffer.create 4096 in
    for round = 1 to 6 do
      for k = 1 to 12 do
        List.iteri
          (fun i ep ->
             Buffer.add_string buf
               (Server.Perflab.call_endpoint u ep (round * 31 + i + k)))
          Workloads.Endpoints.endpoints
      done;
      (* trigger retranslate mid-traffic, repeatedly: exercises the sort
         cache, link invalidation, and re-publication under churn *)
      if mode = Core.Jit_options.Region then
        ignore (Core.Engine.retranslate_all eng)
    done;
    sink := Buffer.contents buf
  in
  run_mode Core.Jit_options.Interp interp_out;
  run_mode Core.Jit_options.Region region_out;
  Alcotest.(check string)
    "interleaved retranslate output matches interpreter" !interp_out
    !region_out

(* ---- Parallel request serving over the shared translation cache ---- *)

(* Fresh warmed engine: every endpoint profiled, optimized code published
   (Region mode) — the steady state a production server serves from. *)
let serving_engine ?budget ?(mode = Core.Jit_options.Region) ()
  : Hhbc.Hunit.t * Core.Engine.t =
  let u = Vm.Loader.load Workloads.Endpoints.source in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.Core.Jit_options.mode <- mode;
  (match budget with
   | Some b -> opts.Core.Jit_options.code_budget <- Some b
   | None -> ());
  let eng = Core.Engine.install ~opts u in
  for round = 1 to 10 do
    List.iteri
      (fun i ep -> ignore (Server.Perflab.call_endpoint u ep (round * 3 + i)))
      Workloads.Endpoints.endpoints
  done;
  if mode = Core.Jit_options.Region then
    ignore (Core.Engine.retranslate_all eng);
  (u, eng)

(* One serving burst on a fresh engine.  [trigger_at] fires a full
   retranslate-all on whichever domain completes that many requests. *)
let serving_run ?budget ?mode ?trigger_at (workers : int)
  : Server.Serving.result =
  let u, eng = serving_engine ?budget ?mode () in
  let trigger =
    Option.map
      (fun at -> (at, fun () -> ignore (Core.Engine.retranslate_all eng)))
      trigger_at
  in
  let requests = Server.Serving.mix ~rounds:6 () in
  Server.Serving.run ~workers ?trigger u eng requests

let check_serving_equal (what : string) (r1 : Server.Serving.result)
    (r : Server.Serving.result) =
  Alcotest.(check (array string))
    (what ^ ": per-request outputs") r1.Server.Serving.sv_outputs
    r.Server.Serving.sv_outputs;
  Alcotest.(check int) (what ^ ": output hash")
    r1.Server.Serving.sv_output_hash r.Server.Serving.sv_output_hash

let test_serving_parity () =
  let r1 = serving_run 1 in
  Alcotest.(check bool) "serving produced output" true
    (Array.length r1.Server.Serving.sv_outputs > 0
     && Array.exists (fun s -> s <> "") r1.Server.Serving.sv_outputs);
  List.iter
    (fun w ->
       check_serving_equal
         (Printf.sprintf "serving @ %d workers" w) r1 (serving_run w))
    [ 2; 4 ]

let test_serving_retranslate_stress () =
  (* fire a full retranslate-all mid-burst: racing requests must see the
     old epoch or the new one, never a half-published table — pinned
     against the single-domain run with the same trigger *)
  let n = Array.length (Server.Serving.mix ~rounds:6 ()) in
  let r1 = serving_run ~trigger_at:(n / 3) 1 in
  check_serving_equal "retranslate mid-burst @ 4 workers" r1
    (serving_run ~trigger_at:(n / 3) 4)

let test_serving_budget_exhaustion () =
  (* a tiny code budget exhausts during warmup: every domain must fall
     back to the interpreter and produce interpreter-identical output *)
  let budget = 2000 in
  let r1 = serving_run ~budget 1 in
  check_serving_equal "budget-exhausted serving @ 4 workers" r1
    (serving_run ~budget 4);
  let ri = serving_run ~mode:Core.Jit_options.Interp 1 in
  check_serving_equal "budget-exhausted serving vs interpreter" ri r1

let test_serving_prof_exact () =
  (* worker-sharded profile counters merge losslessly: per-function entry
     counts after the burst are exact for any worker count *)
  let counts w =
    let u, eng = serving_engine () in
    let before =
      Array.init (Hhbc.Hunit.num_funcs u) Vm.Prof.func_entry_count
    in
    let requests = Server.Serving.mix ~rounds:6 () in
    ignore (Server.Serving.run ~workers:w u eng requests);
    Array.init (Hhbc.Hunit.num_funcs u)
      (fun fid -> Vm.Prof.func_entry_count fid - before.(fid))
  in
  let c1 = counts 1 in
  Alcotest.(check bool) "serving recorded function entries" true
    (Array.exists (fun c -> c > 0) c1);
  List.iter
    (fun w ->
       Alcotest.(check (array int))
         (Printf.sprintf "func-entry counts @ %d workers" w) c1 (counts w))
    [ 2; 4 ]

let test_serving_heap_clean () =
  (* request-private heap values allocated on worker domains are all freed
     and absorbed at the join: no live-count drift vs before the burst *)
  let u, eng = serving_engine () in
  let live_before = (Runtime.Heap.stats ()).Runtime.Heap.live in
  let requests = Server.Serving.mix ~rounds:6 () in
  ignore (Server.Serving.run ~workers:4 u eng requests);
  let hs = Runtime.Heap.stats () in
  Alcotest.(check int) "heap live unchanged after parallel serving"
    live_before hs.Runtime.Heap.live;
  Alcotest.(check bool) "workers' allocations were absorbed" true
    (hs.Runtime.Heap.allocated > live_before)

(* ---- Lazy in-burst translation (write lease + incremental publish) ---- *)

(* Cold Region-mode engine: no warmup, so every endpoint's entry srckey
   misses on first touch inside the burst itself. *)
let cold_engine () : Hhbc.Hunit.t * Core.Engine.t =
  let u = Vm.Loader.load Workloads.Endpoints.source in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.Core.Jit_options.mode <- Core.Jit_options.Region;
  (u, Core.Engine.install ~opts u)

let test_lazy_lease_contention () =
  (* identical requests against a cold engine: several workers miss the
     same entry srckey at once; the lease plus drain-time dedup must land
     exactly one translation for it no matter who raced *)
  let u, eng = cold_engine () in
  let ep = List.hd Workloads.Endpoints.endpoints in
  let requests =
    Array.make 16 { Server.Serving.rq_ep = ep; rq_arg = 42 }
  in
  let r4 = Server.Serving.run ~workers:4 u eng requests in
  (* read before the next install resets the counters *)
  let lazy_compiled =
    Obs.Vmstats.counter_value "lazy_translate.compiled"
  in
  let u1, eng1 = cold_engine () in
  let r1 = Server.Serving.run ~workers:1 u1 eng1 requests in
  check_serving_equal "contended cold burst @ 4 workers" r1 r4;
  let fid =
    match Hhbc.Hunit.find_func u ep.ep_entry with
    | Some fid -> fid
    | None -> Alcotest.fail ("no such function: " ^ ep.ep_entry)
  in
  Alcotest.(check int) "exactly one translation at the contended srckey"
    1 (Core.Engine.chain_length eng ~fid ~pc:0);
  Alcotest.(check bool) "lazy compiles landed" true (lazy_compiled > 0)

let test_serving_lazy_determinism () =
  (* incremental epoch publish under churn: hash parity across worker
     counts with lazy translation on (the default), including a full
     retranslate-all fired mid-burst over the delta-published epochs *)
  let n = Array.length (Server.Serving.mix ~rounds:6 ()) in
  let r1 = serving_run ~trigger_at:(n / 3) 1 in
  List.iter
    (fun w ->
       check_serving_equal
         (Printf.sprintf
            "lazy serving + mid-burst retranslate @ %d workers" w)
         r1
         (serving_run ~trigger_at:(n / 3) w))
    [ 2; 4 ];
  Alcotest.(check bool) "incremental epoch publishes happened" true
    (Obs.Vmstats.counter_value "epoch.delta_publish" > 0)

let test_lazy_queue_overflow () =
  (* a one-slot ring overflows on the second distinct in-burst miss: the
     requesters must fall back to the interpreter with no divergence
     (the burst-start queue reset preserves the shrunken capacity) *)
  let requests = Server.Serving.mix ~rounds:6 () in
  let n = Array.length requests in
  let r1 = serving_run ~trigger_at:(n / 3) 1 in
  let u, eng = serving_engine () in
  Core.Translate_queue.reset ~capacity:1 ();
  let trigger =
    (n / 3, fun () -> ignore (Core.Engine.retranslate_all eng))
  in
  let r = Server.Serving.run ~workers:4 ~trigger u eng requests in
  check_serving_equal "queue-overflow serving @ 4 workers" r1 r;
  Alcotest.(check bool) "queue overflowed" true
    (Obs.Vmstats.counter_value "lazy_translate.queue_overflow" > 0);
  (* ... and at the code-size cap: the budget exhausts during warmup, the
     tiny ring overflows on whatever still enqueues, and every requester
     interprets — output identical to the pure interpreter *)
  let budget = 2000 in
  let r1b = serving_run ~budget 1 in
  let ub, engb = serving_engine ~budget () in
  Core.Translate_queue.reset ~capacity:1 ();
  let rb = Server.Serving.run ~workers:4 ub engb requests in
  Core.Translate_queue.reset
    ~capacity:Core.Translate_queue.default_capacity ();
  check_serving_equal "overflow at code cap @ 4 workers" r1b rb;
  let ri = serving_run ~mode:Core.Jit_options.Interp 1 in
  check_serving_equal "overflow at code cap vs interpreter" ri rb

(* ---- TC lifecycle: eviction + compaction under serving traffic ---- *)

(* Warmed Region engine with the lifecycle knobs on, run through a decay
   loop: small shifted bursts keep the still-trafficked code's liveness
   score replenished while abandoned code halves its way below the
   threshold, then a final shifted burst fires one more lifecycle tick
   (evict + compact) mid-burst on whichever domain crosses halfway. *)
let lifecycle_run (workers : int) : Server.Serving.result * Core.Engine.t =
  let u = Vm.Loader.load Workloads.Endpoints.source in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.Core.Jit_options.mode <- Core.Jit_options.Region;
  opts.Core.Jit_options.request_workers <- workers;
  opts.Core.Jit_options.tc_evict_threshold <- 3;
  opts.Core.Jit_options.tc_compact <- true;
  let eng = Core.Engine.install ~opts u in
  for round = 1 to 10 do
    List.iteri
      (fun i ep -> ignore (Server.Perflab.call_endpoint u ep (round * 3 + i)))
      Workloads.Endpoints.endpoints
  done;
  ignore (Core.Engine.retranslate_all eng);
  for salt = 1 to 12 do
    ignore
      (Server.Serving.run ~workers u eng
         (Server.Serving.mix_shifted ~salt ~rounds:2 ()));
    ignore (Core.Engine.tc_lifecycle_tick eng)
  done;
  let requests = Server.Serving.mix_shifted ~salt:99 ~rounds:6 () in
  let trigger =
    (Array.length requests / 2,
     fun () -> ignore (Core.Engine.tc_lifecycle_tick eng))
  in
  (Server.Serving.run ~workers ~trigger u eng requests, eng)

let test_lifecycle_parity () =
  let r1, eng1 = lifecycle_run 1 in
  let ev1 = Obs.Vmstats.counter_value "tc.evicted" in
  Alcotest.(check bool) "single-domain lifecycle evicted" true (ev1 > 0);
  Alcotest.(check int) "compaction left no holes @ 1 worker" 0
    (Simcpu.Codecache.holes_bytes eng1.Core.Engine.cache);
  List.iter
    (fun w ->
       let r, eng = lifecycle_run w in
       let ev = Obs.Vmstats.counter_value "tc.evicted" in
       Alcotest.(check bool)
         (Printf.sprintf "lifecycle evicted @ %d workers" w) true (ev > 0);
       Alcotest.(check int)
         (Printf.sprintf "compaction left no holes @ %d workers" w) 0
         (Simcpu.Codecache.holes_bytes eng.Core.Engine.cache);
       check_serving_equal
         (Printf.sprintf "evict+compact mid-burst @ %d workers" w) r1 r)
    [ 2; 4 ]

let test_lifecycle_evict_mid_chain () =
  (* a mass eviction + compaction fired mid-burst, while parallel workers
     are mid-chain on the frozen epochs: every translation goes (two
     decay calls — victims must reach age 2), survivors relocate under
     running traffic, and outputs must match both the single-domain run
     with the same trigger and an undisturbed run with no eviction at
     all — eviction changes the dispatch path, never a result *)
  let run_with_evict workers =
    let u, eng = serving_engine () in
    let requests = Server.Serving.mix ~rounds:6 () in
    let evict_all () =
      ignore (Core.Engine.evict_cold eng ~threshold:max_int);
      ignore (Core.Engine.evict_cold eng ~threshold:max_int);
      ignore (Core.Engine.compact_tc eng)
    in
    let trigger = (Array.length requests / 2, evict_all) in
    (Server.Serving.run ~workers ~trigger u eng requests, eng)
  in
  let r_plain = serving_run 1 in
  let r1, eng1 = run_with_evict 1 in
  Alcotest.(check bool) "mass eviction fired" true
    (Obs.Vmstats.counter_value "tc.evicted" > 0);
  Alcotest.(check int) "no optimized code left" 0
    eng1.Core.Engine.n_optimized;
  check_serving_equal "eviction changes no output @ 1 worker" r_plain r1;
  let r4, _ = run_with_evict 4 in
  check_serving_equal "mass eviction mid-burst @ 4 workers" r_plain r4

(* ---- Codecache: reset_optimized accounting ---- *)

let test_codecache_reset_accounting () =
  let open Simcpu.Codecache in
  let t = create ~budget:10_000 () in
  ignore (alloc t Main 1_000);
  ignore (alloc t Cold 500);
  ignore (alloc t Prof 4_000);   (* uncounted: reclaimable prof section *)
  ignore (alloc t Live 300);
  Alcotest.(check int) "counted before reset" 1_800 (bytes_counted t);
  Alcotest.(check int) "total before reset" 5_800 (bytes_used t);
  let reclaimed = reset_optimized t in
  Alcotest.(check int) "reclaimed = main + cold bytes" 1_500 reclaimed;
  Alcotest.(check int) "counted after reset" 300 (bytes_counted t);
  Alcotest.(check int) "total after reset" 4_300 (bytes_used t);
  Alcotest.(check int) "main cursor rewound" 0 (section_bytes t Main);
  Alcotest.(check int) "cold cursor rewound" 0 (section_bytes t Cold);
  (* the reclaimed budget is usable again *)
  (match alloc t Main 9_000 with
   | Some _ -> ()
   | None -> Alcotest.fail "budget not returned by reset_optimized");
  Alcotest.(check int) "counted after realloc" 9_300 (bytes_counted t)

let test_codecache_free_compact_accounting () =
  let open Simcpu.Codecache in
  let t = create ~budget:10_000 () in
  ignore (alloc t Main 1_000);
  ignore (alloc t Main 500);
  ignore (alloc t Cold 400);
  ignore (alloc t Prof 2_000);
  Alcotest.(check int) "counted before free" 1_900 (bytes_counted t);
  free t Main 1_000;
  free t Cold 400;
  free t Prof 2_000;             (* uncounted section: never a hole *)
  Alcotest.(check int) "holes grow on free (counted sections only)" 1_400
    (holes_bytes t);
  Alcotest.(check int) "budget still consumed by holes" 1_900
    (bytes_counted t);
  Alcotest.(check int) "cursors untouched by free" 1_500
    (section_bytes t Main);
  let closed = compact_optimized t in
  Alcotest.(check int) "compaction closes exactly the holes" 1_400 closed;
  Alcotest.(check int) "no holes after compaction" 0 (holes_bytes t);
  Alcotest.(check int) "main cursor rewound" 0 (section_bytes t Main);
  Alcotest.(check int) "cold cursor rewound" 0 (section_bytes t Cold);
  (* the caller re-places the 500-byte survivor right away: net budget
     effect of the compaction is exactly -holes *)
  (match alloc t Main 500 with
   | Some _ -> ()
   | None -> Alcotest.fail "budget not returned by compact_optimized");
  Alcotest.(check int) "survivor re-placed" 500 (bytes_counted t);
  Alcotest.(check int) "lifetime reclaimed counts only evicted bytes" 1_400
    (reclaimed_bytes t);
  (* alignment padding is allocated space, not a hole *)
  ignore (alloc t Main 10);
  align_cursor t Main 64;
  Alcotest.(check int) "align pads the cursor to the boundary" 512
    (section_bytes t Main);
  Alcotest.(check int) "alignment creates no holes" 0 (holes_bytes t)

let suite =
  ( "parallel",
    [ Alcotest.test_case "jit_worker task order" `Quick test_worker_order;
      Alcotest.test_case "jit_worker empty queue" `Quick test_worker_empty;
      Alcotest.test_case "jit_worker exception capture" `Quick test_worker_exn;
      Alcotest.test_case "perflab determinism {1,2,4}" `Quick
        test_perflab_determinism;
      Alcotest.test_case "endpoints determinism {1,2,4}" `Quick
        test_endpoints_determinism;
      Alcotest.test_case "trace seq determinism {1,2,4}" `Quick
        test_trace_determinism;
      Alcotest.test_case "vmstats shard-merge exactness" `Quick
        test_vmstats_exact;
      Alcotest.test_case "stress: requests x retranslate" `Quick
        test_stress_interleave;
      Alcotest.test_case "serving output parity {1,2,4}" `Quick
        test_serving_parity;
      Alcotest.test_case "serving: retranslate mid-burst @ 4 workers" `Quick
        test_serving_retranslate_stress;
      Alcotest.test_case "serving: code-budget exhaustion fallback" `Quick
        test_serving_budget_exhaustion;
      Alcotest.test_case "serving: sharded profile exactness" `Quick
        test_serving_prof_exact;
      Alcotest.test_case "serving: heap clean after parallel burst" `Quick
        test_serving_heap_clean;
      Alcotest.test_case "lazy: lease contention, one translation" `Quick
        test_lazy_lease_contention;
      Alcotest.test_case "lazy: incremental publish determinism {1,2,4}"
        `Quick test_serving_lazy_determinism;
      Alcotest.test_case "lazy: queue overflow falls back to interp" `Quick
        test_lazy_queue_overflow;
      Alcotest.test_case "codecache reset_optimized accounting" `Quick
        test_codecache_reset_accounting;
      Alcotest.test_case "codecache free/compact accounting" `Quick
        test_codecache_free_compact_accounting;
      Alcotest.test_case "lifecycle: evict+compact parity {1,2,4}" `Quick
        test_lifecycle_parity;
      Alcotest.test_case "lifecycle: mass eviction mid-chain-follow" `Quick
        test_lifecycle_evict_mid_chain ] )
