(** Parallel retranslate-all (multi-domain compile, deterministic publish):

    - Jit_worker: every task runs exactly once, results come back in task
      order for any worker count, the queue tolerates more workers than
      tasks, and a raising task doesn't abort the rest (first exception
      re-raised after the join).
    - Determinism: output hash, code-cache byte totals, and the tc-print
      report are identical for [--jit-workers] in {1, 2, 4} on both the
      perflab mix and a direct endpoints workload; JIT trace output (ring
      drain, seq numbers included) is stable too.
    - Vmstats exactness: compile-phase counters (region formation, pass
      pipeline) merge from per-worker shards without loss or double
      counting, so totals match the serial run exactly.
    - Stress: requests interleaved with repeated retranslations at 4
      workers keep producing interpreter-identical output. *)

let workers_counts = [ 1; 2; 4 ]

(* ---- Jit_worker queue ---- *)

let test_worker_order () =
  List.iter
    (fun w ->
       let tasks = Array.init 23 (fun i () -> i * i) in
       let r = Core.Jit_worker.run ~workers:w tasks in
       Alcotest.(check (array int))
         (Printf.sprintf "results in task order @ %d workers" w)
         (Array.init 23 (fun i -> i * i))
         r)
    [ 1; 2; 4; 9; 64 ]

let test_worker_empty () =
  Alcotest.(check (array int)) "no tasks" [||]
    (Core.Jit_worker.run ~workers:4 [||])

let test_worker_exn () =
  let ran = Array.make 10 false in
  let tasks =
    Array.init 10
      (fun i () ->
         ran.(i) <- true;
         if i = 3 then failwith "boom3";
         if i = 7 then failwith "boom7";
         i)
  in
  (match Core.Jit_worker.run ~workers:4 tasks with
   | _ -> Alcotest.fail "expected a task exception to re-raise"
   | exception Failure msg ->
     Alcotest.(check string) "lowest-index exception wins" "boom3" msg);
  Alcotest.(check bool) "every task still ran" true
    (Array.for_all Fun.id ran)

(* ---- Determinism across worker counts ---- *)

let perflab_run (w : int) : int * int * string =
  let r =
    Server.Perflab.run Core.Jit_options.Region
      ~tweak:(fun o -> o.Core.Jit_options.jit_workers <- w)
  in
  ( r.Server.Perflab.r_output_hash,
    r.Server.Perflab.r_code_bytes,
    Core.Tc_print.report ~top:10 r.Server.Perflab.r_engine )

let test_perflab_determinism () =
  let runs = List.map (fun w -> (w, perflab_run w)) workers_counts in
  let _, (h1, b1, tc1) = List.hd runs in
  List.iter
    (fun (w, (h, b, tc)) ->
       Alcotest.(check int)
         (Printf.sprintf "perflab output hash @ %d workers" w) h1 h;
       Alcotest.(check int)
         (Printf.sprintf "perflab code bytes @ %d workers" w) b1 b;
       Alcotest.(check string)
         (Printf.sprintf "perflab tc-print @ %d workers" w) tc1 tc)
    (List.tl runs)

(* Direct endpoints workload: warm every endpoint, retranslate, keep
   serving; returns the full output transcript plus cache/tc-print state. *)
let endpoints_run ?(trace = false) (w : int) : string * int * string =
  let u = Vm.Loader.load Workloads.Endpoints.source in
  ignore (Hhbbc.Assert_insert.run u);
  ignore (Hhbbc.Bc_opt.run u);
  let opts = Core.Jit_options.default () in
  opts.Core.Jit_options.mode <- Core.Jit_options.Region;
  opts.Core.Jit_options.jit_workers <- w;
  if trace then
    opts.Core.Jit_options.trace <- Some "translate,retranslate-all,link";
  let eng = Core.Engine.install ~opts u in
  let buf = Buffer.create 4096 in
  let serve rounds salt =
    for k = 1 to rounds do
      List.iteri
        (fun i ep ->
           Buffer.add_string buf
             (Server.Perflab.call_endpoint u ep (salt + i + k)))
        Workloads.Endpoints.endpoints
    done
  in
  serve 30 0;
  ignore (Core.Engine.retranslate_all eng);
  serve 5 7;
  (Buffer.contents buf, Core.Engine.code_bytes eng,
   Core.Tc_print.report ~top:8 eng)

let test_endpoints_determinism () =
  let runs = List.map (fun w -> (w, endpoints_run w)) workers_counts in
  let _, (out1, b1, tc1) = List.hd runs in
  List.iter
    (fun (w, (out, b, tc)) ->
       Alcotest.(check string)
         (Printf.sprintf "endpoints output @ %d workers" w) out1 out;
       Alcotest.(check int)
         (Printf.sprintf "endpoints code bytes @ %d workers" w) b1 b;
       Alcotest.(check string)
         (Printf.sprintf "endpoints tc-print @ %d workers" w) tc1 tc)
    (List.tl runs)

let test_trace_determinism () =
  let trace_run w =
    ignore (endpoints_run ~trace:true w);
    let lines = Obs.Trace.drain () in
    Obs.Trace.configure ~spec:None ();
    lines
  in
  let runs = List.map (fun w -> (w, trace_run w)) workers_counts in
  let _, l1 = List.hd runs in
  Alcotest.(check bool) "trace produced events" true (l1 <> []);
  List.iter
    (fun (w, l) ->
       Alcotest.(check (list string))
         (Printf.sprintf "trace events (incl. seq) @ %d workers" w) l1 l)
    (List.tl runs)

(* ---- Vmstats shard-merge exactness ---- *)

let compile_counters =
  [ "region.formed"; "region.blocks"; "region.arcs_covered";
    "pass.simplify.changed"; "pass.load_elim.changed"; "pass.gvn.changed";
    "pass.store_elim.changed"; "pass.rce.changed"; "pass.dce.changed";
    "pass.unreachable.changed"; "translate.rejected"; "retranslate.runs" ]

let test_vmstats_exact () =
  let counters_run w =
    ignore (endpoints_run w);
    List.map (fun n -> (n, Obs.Vmstats.counter_value n)) compile_counters
  in
  let runs = List.map (fun w -> (w, counters_run w)) workers_counts in
  let _, c1 = List.hd runs in
  Alcotest.(check bool) "compile-phase counters are live" true
    (List.exists (fun (_, v) -> v > 0) c1);
  List.iter
    (fun (w, c) ->
       List.iter2
         (fun (n, v1) (_, v) ->
            Alcotest.(check int)
              (Printf.sprintf "counter %s @ %d workers" n w) v1 v)
         c1 c)
    (List.tl runs)

(* ---- Stress: serving interleaved with repeated retranslations ---- *)

let test_stress_interleave () =
  let interp_out = ref "" in
  let region_out = ref "" in
  let run_mode (mode : Core.Jit_options.mode) (sink : string ref) =
    let u = Vm.Loader.load Workloads.Endpoints.source in
    ignore (Hhbbc.Assert_insert.run u);
    ignore (Hhbbc.Bc_opt.run u);
    let opts = Core.Jit_options.default () in
    opts.Core.Jit_options.mode <- mode;
    opts.Core.Jit_options.jit_workers <- 4;
    let eng = Core.Engine.install ~opts u in
    let buf = Buffer.create 4096 in
    for round = 1 to 6 do
      for k = 1 to 12 do
        List.iteri
          (fun i ep ->
             Buffer.add_string buf
               (Server.Perflab.call_endpoint u ep (round * 31 + i + k)))
          Workloads.Endpoints.endpoints
      done;
      (* trigger retranslate mid-traffic, repeatedly: exercises the sort
         cache, link invalidation, and re-publication under churn *)
      if mode = Core.Jit_options.Region then
        ignore (Core.Engine.retranslate_all eng)
    done;
    sink := Buffer.contents buf
  in
  run_mode Core.Jit_options.Interp interp_out;
  run_mode Core.Jit_options.Region region_out;
  Alcotest.(check string)
    "interleaved retranslate output matches interpreter" !interp_out
    !region_out

let suite =
  ( "parallel",
    [ Alcotest.test_case "jit_worker task order" `Quick test_worker_order;
      Alcotest.test_case "jit_worker empty queue" `Quick test_worker_empty;
      Alcotest.test_case "jit_worker exception capture" `Quick test_worker_exn;
      Alcotest.test_case "perflab determinism {1,2,4}" `Quick
        test_perflab_determinism;
      Alcotest.test_case "endpoints determinism {1,2,4}" `Quick
        test_endpoints_determinism;
      Alcotest.test_case "trace seq determinism {1,2,4}" `Quick
        test_trace_determinism;
      Alcotest.test_case "vmstats shard-merge exactness" `Quick
        test_vmstats_exact;
      Alcotest.test_case "stress: requests x retranslate" `Quick
        test_stress_interleave ] )
